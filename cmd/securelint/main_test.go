package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeScratch creates a throwaway package directory with the given source.
func writeScratch(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const seededViolation = `package scratch

func blocks(total, per int) int {
	return (total + per - 1) / per
}
`

const cleanSource = `package scratch

func blocks(total, per int) int {
	if per <= 0 {
		return 0
	}
	q := total / per
	if total%per != 0 {
		q++
	}
	return q
}
`

// TestSeededViolationFails is the CI contract: a seeded violation in a
// scratch package makes securelint exit 1 and name the check.
func TestSeededViolationFails(t *testing.T) {
	dir := writeScratch(t, seededViolation)
	var out, errOut strings.Builder
	code := run(context.Background(), []string{dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[ceildiv]") {
		t.Fatalf("output does not name the ceildiv check:\n%s", out.String())
	}
}

// TestCleanExitsZero verifies the zero-findings path.
func TestCleanExitsZero(t *testing.T) {
	dir := writeScratch(t, cleanSource)
	var out, errOut strings.Builder
	code := run(context.Background(), []string{dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

// TestJSONOutput parses the machine-readable form.
func TestJSONOutput(t *testing.T) {
	dir := writeScratch(t, seededViolation)
	var out, errOut strings.Builder
	code := run(context.Background(), []string{"-json", dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	var got struct {
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
		Packages   int `json:"packages"`
	}
	if err := json.Unmarshal([]byte(out.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(got.Findings) != 1 || got.Findings[0].Check != "ceildiv" || got.Findings[0].Line != 4 {
		t.Fatalf("findings = %+v", got.Findings)
	}
	if got.Packages != 1 {
		t.Fatalf("packages = %d, want 1", got.Packages)
	}
}

// TestListChecks verifies -list names the full suite.
func TestListChecks(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ceildiv", "overflowmul", "mapdet", "lockguard", "floateq", "ctxfirst", "keydrift", "puredet"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

const callerSource = `package scratch

func entry() int {
	return helper() + 1
}

func helper() int {
	return 41
}
`

// TestGraphOutput verifies -graph dumps the call graph with the resolved
// edge instead of linting.
func TestGraphOutput(t *testing.T) {
	dir := writeScratch(t, callerSource)
	var out, errOut strings.Builder
	code := run(context.Background(), []string{"-graph", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "call graph: 2 functions, 1 call edges") {
		t.Fatalf("graph summary missing:\n%s", got)
	}
	if !strings.Contains(got, ".helper (line 4)") {
		t.Fatalf("entry -> helper edge missing:\n%s", got)
	}
}

// TestUsageErrors verifies exit code 2 for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-checks", "nosuch", "."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown check: exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit = %d, want 2", code)
	}
}

// TestCancelledRunFails verifies a pre-cancelled context aborts the run with
// the load/usage exit code before any package is analyzed.
func TestCancelledRunFails(t *testing.T) {
	dir := writeScratch(t, cleanSource)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := run(ctx, []string{dir}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "context canceled") {
		t.Fatalf("stderr does not report cancellation:\n%s", errOut.String())
	}
}
