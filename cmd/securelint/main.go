// Command securelint runs the repo-specific static-analysis suite over the
// given package patterns and exits non-zero if any check fires. It is built
// only on the standard library (go/parser, go/ast, go/types) and enforces
// the invariants the scheduler's performance work depends on; see DESIGN.md
// ("Enforced invariants") for the check-by-check rationale.
//
// Usage:
//
//	securelint [-json] [-tests] [-checks list] [-graph] [packages]
//
//	securelint ./...                  # lint the whole module
//	securelint -json ./internal/...   # machine-readable findings
//	securelint -checks ceildiv,mapdet ./internal/mapping
//	securelint -graph ./internal/...  # dump the interprocedural call graph
//
// Findings print as file:line:col: [check] message. Suppress a documented
// false positive by placing
//
//	//securelint:ignore <check> <reason>
//
// on the offending line or the line directly above it.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"secureloop/internal/lint"
)

func main() {
	// Ctrl-C stops a module-wide run at the next package boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("securelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		tests   = fs.Bool("tests", false, "also lint in-package _test.go files")
		checks  = fs.String("checks", "", "comma-separated subset of checks (default: all)")
		list    = fs.Bool("list", false, "list the registered checks and exit")
		graph   = fs.Bool("graph", false, "dump the module-wide call graph the interprocedural checks run on, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *graph {
		g, err := lint.GraphCtx(ctx, lint.Config{Patterns: fs.Args()})
		if err != nil {
			fmt.Fprintln(stderr, "securelint:", err)
			return 2
		}
		g.Dump(stdout)
		return 0
	}

	res, err := lint.RunCtx(ctx, lint.Config{
		Patterns:     fs.Args(),
		Checks:       *checks,
		IncludeTests: *tests,
	})
	if err != nil {
		fmt.Fprintln(stderr, "securelint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Findings   []lint.Diagnostic `json:"findings"`
			Suppressed int               `json:"suppressed"`
			Packages   int               `json:"packages"`
		}{res.Diags, res.Suppressed, res.Packages}
		if res.Diags == nil {
			out.Findings = []lint.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "securelint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stdout, "securelint: %d package(s), %d finding(s), %d suppressed\n",
			res.Packages, len(res.Diags), res.Suppressed)
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
