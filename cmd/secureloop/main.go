// Command secureloop schedules a DNN workload on a secure accelerator
// design and reports latency, energy and authentication-traffic statistics.
//
// Usage:
//
//	secureloop -workload mobilenetv2 -engine parallel -count 1 \
//	           -alg crypt-opt-cross [-pe 14x12] [-glb 131072] \
//	           [-dram lpddr4-64] [-topk 6] [-iters 1000] [-seed 1] \
//	           [-guided] [-epsilon 0] [-layers] [-csv out.csv] [-compare]
//
// -compare runs all of Table 1's algorithms plus the unsecure baseline and
// prints the normalized-latency comparison of Figure 11a for the chosen
// design.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/report"
	"secureloop/internal/store"
	"secureloop/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "alexnet", "workload: alexnet, resnet18, mobilenetv2, vgg16, or a .json file")
		engineName   = flag.String("engine", "parallel", "AES-GCM engine: pipelined, parallel, serial")
		count        = flag.Int("count", 1, "engines per datatype")
		algName      = flag.String("alg", "crypt-opt-cross", "algorithm: unsecure, crypt-tile-single, crypt-opt-single, crypt-opt-cross")
		pe           = flag.String("pe", "14x12", "PE array, e.g. 14x12")
		glb          = flag.Int("glb", 131*1024, "global buffer bytes")
		dram         = flag.String("dram", "lpddr4-64", "DRAM: lpddr4-64, lpddr4-128, hbm2")
		topK         = flag.Int("topk", 6, "top-k schedules per layer for annealing")
		iters        = flag.Int("iters", 1000, "annealing iterations")
		seed         = flag.Int64("seed", 1, "annealing seed")
		guided       = flag.Bool("guided", false, "use the guided loopnest search (byte-identical results at epsilon 0)")
		epsilon      = flag.Float64("epsilon", 0, "guided-search relaxation: allowed per-rank cycle regression (e.g. 0.01)")
		layers       = flag.Bool("layers", false, "print per-layer table")
		csvPath      = flag.String("csv", "", "write per-layer CSV to this path")
		compare      = flag.Bool("compare", false, "compare all scheduling algorithms")
		objective    = flag.String("objective", "latency", "fine-tuning objective: latency or edp")
		storeDir     = flag.String("store", "", "persistent result-store directory: identical runs replay byte-identical schedules from disk")
	)
	flag.Parse()

	// Ctrl-C cancels the schedule at its next stage boundary; the error
	// printed on exit names the stage that was interrupted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	net, err := loadWorkload(*workloadName)
	if err != nil {
		fatal(err)
	}
	engine, err := cryptoengine.ByName(*engineName)
	if err != nil {
		fatal(err)
	}
	crypto, err := cryptoengine.NewConfig(engine, *count)
	if err != nil {
		fatal(err)
	}
	spec, err := buildSpec(*pe, *glb, *dram)
	if err != nil {
		fatal(err)
	}

	s := core.New(spec, crypto)
	s.TopK = *topK
	s.Anneal.Iterations = *iters
	s.Anneal.Seed = *seed
	if *guided {
		s.Mapper = mapper.Options{Mode: mapper.Guided, Epsilon: *epsilon}
	}
	switch strings.ToLower(*objective) {
	case "latency":
		s.Objective = core.MinLatency
	case "edp":
		s.Objective = core.MinEDP
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "secureloop: store close:", err)
			}
		}()
		s.Store = st
	}

	if *compare {
		runCompare(ctx, s, net)
		return
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	res, err := s.ScheduleNetworkCtx(ctx, net, alg)
	if err != nil {
		fatal(err)
	}
	report.Summary(os.Stdout, res, spec.ClockHz)
	if *layers {
		fmt.Println()
		report.Layers(os.Stdout, res)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		report.CSV(f, res)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func runCompare(ctx context.Context, s *core.Scheduler, net *workload.Network) {
	base, err := s.ScheduleNetworkCtx(ctx, net, core.Unsecure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-20s %14s %10s %12s %12s\n", "algorithm", "cycles", "norm", "auth_Mbit", "EDP")
	fmt.Printf("%-20s %14d %10.3f %12s %12.4g\n", "Unsecure", base.Total.Cycles, 1.0, "-", base.Total.EDP())
	for _, alg := range core.Algorithms() {
		res, err := s.ScheduleNetworkCtx(ctx, net, alg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-20s %14d %10.3f %12.4g %12.4g\n", alg.String(), res.Total.Cycles,
			float64(res.Total.Cycles)/float64(base.Total.Cycles),
			float64(res.Traffic.Total())/1e6, res.Total.EDP())
	}
}

// loadWorkload resolves a built-in network name or, when the argument ends
// in ".json", a custom network description (see workload.ParseJSON).
func loadWorkload(name string) (*workload.Network, error) {
	if strings.HasSuffix(name, ".json") {
		return workload.LoadJSON(name)
	}
	return workload.ByName(name)
}

func buildSpec(pe string, glb int, dram string) (arch.Spec, error) {
	spec := arch.Base()
	var x, y int
	if _, err := fmt.Sscanf(pe, "%dx%d", &x, &y); err != nil {
		return spec, fmt.Errorf("bad -pe %q (want e.g. 14x12)", pe)
	}
	spec = spec.WithPEs(x, y).WithGlobalBuffer(glb)
	switch strings.ToLower(dram) {
	case "lpddr4-64":
		spec = spec.WithDRAM(arch.LPDDR4x64)
	case "lpddr4-128":
		spec = spec.WithDRAM(arch.LPDDR4x128)
	case "hbm2":
		spec = spec.WithDRAM(arch.HBM2x64)
	default:
		return spec, fmt.Errorf("bad -dram %q", dram)
	}
	return spec, nil
}

func parseAlg(name string) (core.Algorithm, error) {
	switch strings.ToLower(name) {
	case "unsecure":
		return core.Unsecure, nil
	case "crypt-tile-single":
		return core.CryptTileSingle, nil
	case "crypt-opt-single":
		return core.CryptOptSingle, nil
	case "crypt-opt-cross":
		return core.CryptOptCross, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "secureloop: interrupted:", err)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "secureloop:", err)
	os.Exit(1)
}
