// Command secured is the SecureLoop scheduling daemon: it serves the
// scheduler, the design-space sweep and the AuthBlock optimiser over
// HTTP/JSON (POST /v1/schedule, /v1/sweep, /v1/authblock; GET /v1/health,
// /v1/stats), with singleflight coalescing of identical requests, a
// bounded load-shedding admission queue, per-request deadlines, optional
// SSE progress streaming (Accept: text/event-stream), an optional
// persistent result store (-store), and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	secured -addr 127.0.0.1:8080 -store /var/cache/secureloop
//
// The bound address prints on stdout once listening (useful with -addr
// :0); "secured: draining" prints when shutdown begins.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secureloop/internal/obs"
	"secureloop/internal/service"
	"secureloop/internal/service/httpapi"
	"secureloop/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "secured:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so tests can drive it with
// their own context, flags and stdout.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("secured", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	storeDir := fs.String("store", "", "persistent result store directory (empty: in-memory caches only)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max requests computing at once (0: GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "max requests waiting for a slot (0: 64)")
	memBudgetMB := fs.Int64("mem-budget-mb", 0, "admission memory budget in MiB (0: 4096)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline for requests that specify none (0: 5m)")
	maxDeadline := fs.Duration("max-deadline", 0, "upper clamp on requested deadlines (0: 30m)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	maxParallel := fs.Int("parallel", 0, "worker pool size per request (0: one per CPU)")
	maxBodyMB := fs.Int64("max-body-mb", 0, "max request body size in MiB (0: 8)")
	progress := fs.Bool("progress", false, "log every request's progress events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		Admission: service.AdmissionConfig{
			MaxConcurrent:     *maxConcurrent,
			MaxQueue:          *maxQueue,
			MemoryBudgetBytes: *memBudgetMB << 20,
			DefaultDeadline:   *defaultDeadline,
			MaxDeadline:       *maxDeadline,
		},
		MaxParallel: *maxParallel,
	}
	if *progress {
		cfg.Observe = obs.NewLogger(os.Stderr)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			return err
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "secured: store close:", err)
			}
		}()
		cfg.Store = st
	}
	svc := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "secured: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler: httpapi.NewHandler(svc, httpapi.Options{MaxBodyBytes: *maxBodyMB << 20}),
		// Slowloris guard: bound header reads and idle keep-alives.
		// WriteTimeout stays 0 — SSE responses stream for the life of the
		// request (the per-request deadline bounds them instead).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, let in-flight requests finish (and
	// their responses flush), then close the listener and the store.
	fmt.Fprintln(stdout, "secured: draining")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "secured: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Fprintln(stdout, "secured: stopped")
	return nil
}
