package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"secureloop/internal/service"
	"secureloop/internal/service/client"
)

// lineWriter signals the daemon's lifecycle lines as they print.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addr  chan string
	once  sync.Once
	lines []string
}

func newLineWriter() *lineWriter {
	return &lineWriter{addr: make(chan string, 1)}
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.buf.Write(p)
	for {
		line, err := lw.buf.ReadString('\n')
		if err != nil {
			lw.buf.WriteString(line)
			break
		}
		line = strings.TrimSpace(line)
		lw.lines = append(lw.lines, line)
		if rest, ok := strings.CutPrefix(line, "secured: listening on "); ok {
			lw.once.Do(func() { lw.addr <- rest })
		}
	}
	return len(p), nil
}

func (lw *lineWriter) sawLine(s string) bool {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	for _, l := range lw.lines {
		if l == s {
			return true
		}
	}
	return false
}

func tinyWire(annealIters int) *service.ScheduleWire {
	net := `{
		"name": "tiny2",
		"layers": [
			{"name": "l0", "c": 8, "m": 16, "r": 3, "s": 3, "p": 7, "q": 7, "n": 1, "pad": 1},
			{"name": "l1", "c": 16, "m": 8, "r": 3, "s": 3, "p": 7, "q": 7, "n": 1, "pad": 1}
		],
		"segments": [[0, 1]]
	}`
	return &service.ScheduleWire{
		Network:          json.RawMessage(net),
		AnnealIterations: annealIters,
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port with a persistent
// store, runs one schedule plus its warm repeat through the typed client
// (asserting the repeat is byte-identical and evaluation-free), then
// shuts down via context cancellation — the same path a SIGTERM takes —
// and asserts the drain completes cleanly.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lw := newLineWriter()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-store", t.TempDir(),
			"-drain-timeout", "10s",
		}, lw)
	}()
	var addr string
	select {
	case addr = <-lw.addr:
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}
	c := client.New("http://" + addr)

	status, draining, err := c.Health(ctx)
	if err != nil || status != "ok" || draining {
		t.Fatalf("health = (%q, %v, %v), want (ok, false, nil)", status, draining, err)
	}

	cold, coldAcct, err := c.ScheduleBytes(ctx, tinyWire(40))
	if err != nil {
		t.Fatalf("cold schedule: %v", err)
	}
	if coldAcct.StoreHit {
		t.Error("cold request reported a store hit")
	}
	statsCold, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	warm, warmAcct, err := c.ScheduleBytes(ctx, tinyWire(40))
	if err != nil {
		t.Fatalf("warm schedule: %v", err)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm repeat not byte-identical:\ncold: %s\nwarm: %s", cold, warm)
	}
	if !warmAcct.StoreHit {
		t.Error("warm repeat did not report X-Secured-Store: hit")
	}
	statsWarm, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := statsWarm.AuthOptimal.Runs - statsCold.AuthOptimal.Runs; d != 0 {
		t.Errorf("warm repeat ran %d AuthBlock optimisations, want 0", d)
	}
	coldLookups := statsCold.MapperSearch.Hits + statsCold.MapperSearch.Misses
	warmLookups := statsWarm.MapperSearch.Hits + statsWarm.MapperSearch.Misses
	if warmLookups != coldLookups {
		t.Errorf("warm repeat touched the mapper cache (%d -> %d lookups)", coldLookups, warmLookups)
	}
	if statsWarm.Service.Completed != 2 || statsWarm.Service.StoreHits != 1 {
		t.Errorf("service counters = %+v, want 2 completed with 1 store hit", statsWarm.Service)
	}
	if statsWarm.Store == nil || statsWarm.Store.Hits < 1 {
		t.Error("persistent store stats missing or hitless after warm repeat")
	}

	// Graceful shutdown: cancelling run's context is the SIGTERM path.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !lw.sawLine("secured: draining") || !lw.sawLine("secured: stopped") {
		t.Errorf("lifecycle lines missing; got %q", lw.lines)
	}
}

// TestDaemonRejectsBadFlags: flag errors return without the daemon
// starting.
func TestDaemonRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, io.Discard)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}
