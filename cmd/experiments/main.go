// Command experiments regenerates the paper's evaluation tables and
// figures as aligned text (stdout) and CSV files.
//
// Usage:
//
//	experiments [-fig all|3|t2|9|10|11|12|13|14|15|16|dram] [-quick] [-guided] [-epsilon 0]
//	            [-out results] [-store dir] [-cachestats] [-progress]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -quick trades fidelity for speed (fewer annealing iterations and seeds);
// use it for smoke runs. The full run regenerates every experiment at
// paper-scale settings. -guided switches every loopnest search to the
// lower-bound-guided mode (byte-identical results at the default -epsilon 0,
// an order of magnitude faster). -store names a persistent result-store
// directory: a warm rerun replays byte-identical schedules from disk instead
// of recomputing them. -progress streams per-stage scheduling progress to
// stderr. -cachestats reports every memoisation tier's hit ratio and
// counters (mapper search cache, tile-candidate cache, warm-start store,
// guided-search work, AuthBlock memos, sweep-coordinator pruning,
// persistent store) after the run.
//
// Ctrl-C cancels the run: in-flight schedules stop at their next stage
// boundary and the error names the stage that was interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"secureloop/internal/authblock"
	"secureloop/internal/dse"
	"secureloop/internal/experiments"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
	"secureloop/internal/store"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run (all, 3, t2, 9, 10, 11, 12, 13, 14, 15, 16, dram, hashsize)")
	quick := flag.Bool("quick", false, "reduced-fidelity fast run")
	guided := flag.Bool("guided", false, "use the guided loopnest search (byte-identical results at epsilon 0)")
	epsilon := flag.Float64("epsilon", 0, "guided-search relaxation: allowed per-rank cycle regression (e.g. 0.01)")
	out := flag.String("out", "results", "directory for CSV output (empty to skip)")
	storeDir := flag.String("store", "", "persistent result-store directory: warm reruns replay byte-identical schedules from disk")
	cachestats := flag.Bool("cachestats", false, "report per-tier cache hit ratios and counters after the run")
	progress := flag.Bool("progress", false, "stream scheduling progress to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	hooks := obs.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile}
	if *progress {
		hooks.Observer = obs.NewLogger(os.Stderr)
	}
	stopProf, err := hooks.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.Options{Quick: *quick, Observe: hooks.Observer}
	if *guided {
		opts.Mapper = mapper.Options{Mode: mapper.Guided, Epsilon: *epsilon}
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: store close:", err)
			}
		}()
		opts.Store = st
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(id string, fn func() ([]experiments.Table, error)) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		tables, err := fn()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The wrapped error names the experiment and the stage it
				// reached when Ctrl-C arrived.
				fmt.Fprintf(os.Stderr, "experiments: interrupted: %v\n", err)
				os.Exit(130)
			}
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.Text())
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				path := filepath.Join(*out, t.Name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("3", func() ([]experiments.Table, error) { return []experiments.Table{experiments.Fig3()}, nil })
	run("t2", func() ([]experiments.Table, error) { return []experiments.Table{experiments.Table2()}, nil })
	run("9", func() ([]experiments.Table, error) {
		h, v := experiments.Fig9()
		return []experiments.Table{h, v}, nil
	})
	run("10", func() ([]experiments.Table, error) {
		t, err := experiments.Fig10(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("11", func() ([]experiments.Table, error) {
		a, b, _, err := experiments.Fig11(ctx, opts)
		return []experiments.Table{a, b}, err
	})
	run("12", func() ([]experiments.Table, error) {
		t, err := experiments.Fig12(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("13", func() ([]experiments.Table, error) {
		t, err := experiments.Fig13(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("14", func() ([]experiments.Table, error) {
		t, err := experiments.Fig14(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("15", func() ([]experiments.Table, error) {
		t, err := experiments.Fig15(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("dram", func() ([]experiments.Table, error) {
		t, err := experiments.DRAMStudy(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("16", func() ([]experiments.Table, error) {
		t, _, err := experiments.Fig16(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("hashsize", func() ([]experiments.Table, error) {
		t, err := experiments.HashSizeStudy(ctx, opts)
		return []experiments.Table{t}, err
	})

	if *cachestats {
		printCacheStats(st)
	}
}

// ratio renders hits over lookups as a percentage, "-" before any lookup.
func ratio(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}

// printCacheStats reports every memoisation tier with its hit ratio: the
// in-memory mapper and AuthBlock caches, the guided-search warm store, and
// (when -store is set) the persistent cross-process tier.
func printCacheStats(st *store.Store) {
	ms := mapper.CacheStats()
	fmt.Printf("mapper search cache:  %s hit ratio (%d hits, %d misses), %d coalesced, %d entries\n",
		ratio(ms.Hits, ms.Misses), ms.Hits, ms.Misses, ms.Shared, ms.Entries)
	ts := mapper.TileCacheStats()
	fmt.Printf("mapper tile cache:    %s hit ratio (%d hits, %d misses), %d evictions, %d entries\n",
		ratio(ts.Hits, ts.Misses), ts.Hits, ts.Misses, ts.Evictions, ts.Entries)
	ws := mapper.WarmStartStats()
	fmt.Printf("mapper warm store:    %s hit ratio (%d hits, %d misses), %d stores, %d evictions, %d entries\n",
		ratio(ws.Hits, ws.Misses), ws.Hits, ws.Misses, ws.Stores, ws.Evictions, ws.Entries)
	gs := mapper.GuidedSearchStats()
	fmt.Printf("guided search:        %d searches, %d evaluated, %d pruned, %d skipped, %d warm seeds\n",
		gs.Searches, gs.Evaluated, gs.Pruned, gs.Skipped, gs.WarmSeeds)
	opt, tile := authblock.CacheStats()
	fmt.Printf("authblock optimal:    %s hit ratio (%d hits, %d misses), %d runs, %d entries\n",
		ratio(opt.Hits, opt.Misses), opt.Hits, opt.Misses, opt.Runs, opt.Entries)
	fmt.Printf("authblock tile-block: %s hit ratio (%d hits, %d misses), %d entries\n",
		ratio(tile.Hits, tile.Misses), tile.Hits, tile.Misses, tile.Entries)
	dc, sc := authblock.DecompCacheStats()
	fmt.Printf("authblock decomp:     %s hit ratio (%d hits, %d misses), %d evictions, %d entries\n",
		ratio(dc.Hits, dc.Misses), dc.Hits, dc.Misses, dc.Evictions, dc.Entries)
	fmt.Printf("authblock sizes:      %s hit ratio (%d hits, %d misses), %d evictions, %d entries\n",
		ratio(sc.Hits, sc.Misses), sc.Hits, sc.Misses, sc.Evictions, sc.Entries)
	ps := dse.PruneStats()
	fmt.Printf("sweep prune:          %d points bounded, %d pruned, %d deferred, %d re-evaluated in the exact pass, %d full evals (%d store-answered)\n",
		ps.Bounded, ps.Pruned, ps.Deferred, ps.Reevaluated, ps.FullEvals, ps.StoreHits)
	if st != nil {
		ss := st.Stats()
		fmt.Printf("persistent store:     %s hit ratio (%d hits, %d misses), %d puts, %d corrupt, %d evicted segments, %d entries, %d bytes\n",
			ratio(ss.Hits, ss.Misses), ss.Hits, ss.Misses, ss.Puts, ss.Corrupt, ss.EvictedSegments, ss.Entries, ss.Bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
