// Command experiments regenerates the paper's evaluation tables and
// figures as aligned text (stdout) and CSV files.
//
// Usage:
//
//	experiments [-fig all|3|t2|9|10|11|12|13|14|15|16|dram] [-quick] [-guided] [-epsilon 0]
//	            [-out results] [-cachestats] [-progress] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -quick trades fidelity for speed (fewer annealing iterations and seeds);
// use it for smoke runs. The full run regenerates every experiment at
// paper-scale settings. -guided switches every loopnest search to the
// lower-bound-guided mode (byte-identical results at the default -epsilon 0,
// an order of magnitude faster). -progress streams per-stage scheduling
// progress to stderr. -cachestats reports the memoisation-layer counters
// (mapper search cache, tile-candidate cache, warm-start store,
// guided-search work, AuthBlock memos) after the run.
//
// Ctrl-C cancels the run: in-flight schedules stop at their next stage
// boundary and the error names the stage that was interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"secureloop/internal/authblock"
	"secureloop/internal/experiments"
	"secureloop/internal/mapper"
	"secureloop/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run (all, 3, t2, 9, 10, 11, 12, 13, 14, 15, 16, dram, hashsize)")
	quick := flag.Bool("quick", false, "reduced-fidelity fast run")
	guided := flag.Bool("guided", false, "use the guided loopnest search (byte-identical results at epsilon 0)")
	epsilon := flag.Float64("epsilon", 0, "guided-search relaxation: allowed per-rank cycle regression (e.g. 0.01)")
	out := flag.String("out", "results", "directory for CSV output (empty to skip)")
	cachestats := flag.Bool("cachestats", false, "report cache hit/miss counters after the run")
	progress := flag.Bool("progress", false, "stream scheduling progress to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	hooks := obs.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile}
	if *progress {
		hooks.Observer = obs.NewLogger(os.Stderr)
	}
	stopProf, err := hooks.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.Options{Quick: *quick, Observe: hooks.Observer}
	if *guided {
		opts.Mapper = mapper.Options{Mode: mapper.Guided, Epsilon: *epsilon}
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(id string, fn func() ([]experiments.Table, error)) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		tables, err := fn()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The wrapped error names the experiment and the stage it
				// reached when Ctrl-C arrived.
				fmt.Fprintf(os.Stderr, "experiments: interrupted: %v\n", err)
				os.Exit(130)
			}
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.Text())
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				path := filepath.Join(*out, t.Name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("3", func() ([]experiments.Table, error) { return []experiments.Table{experiments.Fig3()}, nil })
	run("t2", func() ([]experiments.Table, error) { return []experiments.Table{experiments.Table2()}, nil })
	run("9", func() ([]experiments.Table, error) {
		h, v := experiments.Fig9()
		return []experiments.Table{h, v}, nil
	})
	run("10", func() ([]experiments.Table, error) {
		t, err := experiments.Fig10(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("11", func() ([]experiments.Table, error) {
		a, b, _, err := experiments.Fig11(ctx, opts)
		return []experiments.Table{a, b}, err
	})
	run("12", func() ([]experiments.Table, error) {
		t, err := experiments.Fig12(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("13", func() ([]experiments.Table, error) {
		t, err := experiments.Fig13(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("14", func() ([]experiments.Table, error) {
		t, err := experiments.Fig14(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("15", func() ([]experiments.Table, error) {
		t, err := experiments.Fig15(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("dram", func() ([]experiments.Table, error) {
		t, err := experiments.DRAMStudy(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("16", func() ([]experiments.Table, error) {
		t, _, err := experiments.Fig16(ctx, opts)
		return []experiments.Table{t}, err
	})
	run("hashsize", func() ([]experiments.Table, error) {
		t, err := experiments.HashSizeStudy(ctx, opts)
		return []experiments.Table{t}, err
	})

	if *cachestats {
		ms := mapper.CacheStats()
		fmt.Printf("mapper search cache:  %d hits, %d misses, %d coalesced, %d entries\n",
			ms.Hits, ms.Misses, ms.Shared, ms.Entries)
		ts := mapper.TileCacheStats()
		fmt.Printf("mapper tile cache:    %d hits, %d misses, %d evictions, %d entries\n",
			ts.Hits, ts.Misses, ts.Evictions, ts.Entries)
		ws := mapper.WarmStartStats()
		fmt.Printf("mapper warm store:    %d hits, %d misses, %d stores, %d evictions, %d entries\n",
			ws.Hits, ws.Misses, ws.Stores, ws.Evictions, ws.Entries)
		gs := mapper.GuidedSearchStats()
		fmt.Printf("guided search:        %d searches, %d evaluated, %d pruned, %d skipped, %d warm seeds\n",
			gs.Searches, gs.Evaluated, gs.Pruned, gs.Skipped, gs.WarmSeeds)
		opt, tile := authblock.CacheStats()
		fmt.Printf("authblock optimal:    %d hits, %d misses, %d entries\n",
			opt.Hits, opt.Misses, opt.Entries)
		fmt.Printf("authblock tile-block: %d hits, %d misses, %d entries\n",
			tile.Hits, tile.Misses, tile.Entries)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
