// Command experiments regenerates the paper's evaluation tables and
// figures as aligned text (stdout) and CSV files.
//
// Usage:
//
//	experiments [-fig all|3|t2|9|10|11|12|13|14|15|16|dram] [-quick] [-out results] [-cachestats]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -quick trades fidelity for speed (fewer annealing iterations and seeds);
// use it for smoke runs. The full run regenerates every experiment at
// paper-scale settings. -cachestats reports the memoisation-layer counters
// (mapper search cache, AuthBlock memos) after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"secureloop/internal/authblock"
	"secureloop/internal/experiments"
	"secureloop/internal/mapper"
	"secureloop/internal/prof"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run (all, 3, t2, 9, 10, 11, 12, 13, 14, 15, 16, dram, hashsize)")
	quick := flag.Bool("quick", false, "reduced-fidelity fast run")
	out := flag.String("out", "results", "directory for CSV output (empty to skip)")
	cachestats := flag.Bool("cachestats", false, "report cache hit/miss counters after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.Options{Quick: *quick}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(id string, fn func() []experiments.Table) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		for _, t := range fn() {
			fmt.Println(t.Text())
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				path := filepath.Join(*out, t.Name+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	run("3", func() []experiments.Table { return []experiments.Table{experiments.Fig3()} })
	run("t2", func() []experiments.Table { return []experiments.Table{experiments.Table2()} })
	run("9", func() []experiments.Table {
		h, v := experiments.Fig9()
		return []experiments.Table{h, v}
	})
	run("10", func() []experiments.Table { return []experiments.Table{experiments.Fig10(opts)} })
	run("11", func() []experiments.Table {
		a, b, _ := experiments.Fig11(opts)
		return []experiments.Table{a, b}
	})
	run("12", func() []experiments.Table { return []experiments.Table{experiments.Fig12(opts)} })
	run("13", func() []experiments.Table { return []experiments.Table{experiments.Fig13(opts)} })
	run("14", func() []experiments.Table { return []experiments.Table{experiments.Fig14(opts)} })
	run("15", func() []experiments.Table { return []experiments.Table{experiments.Fig15(opts)} })
	run("dram", func() []experiments.Table { return []experiments.Table{experiments.DRAMStudy(opts)} })
	run("16", func() []experiments.Table {
		t, _ := experiments.Fig16(opts)
		return []experiments.Table{t}
	})
	run("hashsize", func() []experiments.Table { return []experiments.Table{experiments.HashSizeStudy(opts)} })

	if *cachestats {
		ms := mapper.CacheStats()
		fmt.Printf("mapper search cache:  %d hits, %d misses, %d coalesced, %d entries\n",
			ms.Hits, ms.Misses, ms.Shared, ms.Entries)
		opt, tile := authblock.CacheStats()
		fmt.Printf("authblock optimal:    %d hits, %d misses, %d entries\n",
			opt.Hits, opt.Misses, opt.Entries)
		fmt.Printf("authblock tile-block: %d hits, %d misses, %d entries\n",
			tile.Hits, tile.Misses, tile.Entries)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
