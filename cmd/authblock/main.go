// Command authblock explores the authentication-block assignment space for
// a producer/consumer tiling mismatch: it sweeps block sizes per
// orientation, prints the cost curve (hash reads, redundant reads), reports
// the optimum, and compares it against the tile-as-an-AuthBlock baseline —
// an interactive version of the paper's Figure 9 analysis for arbitrary
// geometries.
//
// Usage (defaults reproduce the paper's Figure 8/9 example):
//
//	authblock [-tensor 1x30x30] [-ptile 1x30x30] \
//	          [-cwin 30x20] [-cstep 30x20] [-coff 0x10] [-cch 1] \
//	          [-word 16] [-hash 64] [-max 64] [-sweep horizontal]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"secureloop/internal/authblock"
	"secureloop/internal/num"
)

func main() {
	var (
		tensor = flag.String("tensor", "1x30x30", "tensor dims CxHxW")
		ptile  = flag.String("ptile", "1x30x30", "producer tile dims CxHxW")
		cwin   = flag.String("cwin", "30x20", "consumer window HxW")
		cstep  = flag.String("cstep", "30x20", "consumer step HxW")
		coff   = flag.String("coff", "0x10", "consumer offset HxW (may be negative)")
		cch    = flag.Int("cch", 1, "consumer channels per tile")
		word   = flag.Int("word", 16, "element bits")
		hash   = flag.Int("hash", 64, "hash (tag) bits")
		maxU   = flag.Int("max", 64, "sweep upper bound for block size")
		sweepO = flag.String("sweep", "horizontal", "orientation to print the sweep for: horizontal, vertical, channel")
	)
	flag.Parse()

	// Ctrl-C cancels the sweep between block-size batches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var C, H, W int
	mustScan(*tensor, "%dx%dx%d", &C, &H, &W)
	var tc, th, tw int
	mustScan(*ptile, "%dx%dx%d", &tc, &th, &tw)
	var winH, winW, stepH, stepW, offH, offW int
	mustScan(*cwin, "%dx%d", &winH, &winW)
	mustScan(*cstep, "%dx%d", &stepH, &stepW)
	mustScan(*coff, "%dx%d", &offH, &offW)

	p := authblock.ProducerGrid{C: C, H: H, W: W, TileC: tc, TileH: th, TileW: tw, WritesPerTile: 1}
	c := authblock.ConsumerGrid{
		TileC: *cch,
		WinH:  winH, WinW: winW,
		StepH: stepH, StepW: stepW,
		OffH: offH, OffW: offW,
		CountC:         num.CeilDiv(C, *cch),
		CountH:         countAlong(H, offH, stepH, winH),
		CountW:         countAlong(W, offW, stepW, winW),
		FetchesPerTile: 1,
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	if err := c.Validate(); err != nil {
		fatal(err)
	}
	par := authblock.Params{WordBits: *word, HashBits: *hash}

	var orient authblock.Orientation
	switch *sweepO {
	case "horizontal":
		orient = authblock.AlongQ
	case "vertical":
		orient = authblock.AlongP
	case "channel":
		orient = authblock.AlongC
	default:
		fatal(fmt.Errorf("bad -sweep %q", *sweepO))
	}

	fmt.Printf("producer: %dx%dx%d tensor, %dx%dx%d tiles (%d tiles)\n",
		C, H, W, tc, th, tw, p.NumTiles())
	fmt.Printf("consumer: %d tiles (ch=%d win=%dx%d step=%dx%d off=%dx%d)\n\n",
		c.NumTiles(), *cch, winH, winW, stepH, stepW, offH, offW)

	fmt.Printf("%s sweep (u = 1..%d):\n", orient, *maxU)
	fmt.Printf("%6s %14s %14s %14s\n", "u", "redundant_bits", "tag_bits", "total_bits")
	sweep, err := authblock.SweepCtx(ctx, p, c, orient, *maxU, par)
	if err != nil {
		fatal(err)
	}
	for _, r := range sweep {
		total := r.Costs.RedundantBits + r.Costs.HashReadBits
		fmt.Printf("%6d %14d %14d %14d\n", r.Assignment.U, r.Costs.RedundantBits, r.Costs.HashReadBits, total)
	}

	opt, err := authblock.OptimalCtx(ctx, p, c, par)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\noptimal assignment: %s, u=%d (hash %d bits, redundant %d bits, total %d bits)\n",
		opt.Assignment.Orientation, opt.Assignment.U,
		opt.Costs.HashBitsTotal(), opt.Costs.RedundantBits, opt.Costs.Total())

	base, rehashed := authblock.TileAsAuthBlock(p, c, par)
	strategy := "direct (whole-tile fetches)"
	if rehashed {
		strategy = "rehash"
	}
	fmt.Printf("tile-as-an-AuthBlock baseline: %s, total %d bits\n", strategy, base.Total())
	if base.Total() > 0 {
		fmt.Printf("optimal saves %.1f%% of the baseline's extra traffic\n",
			100*(1-float64(opt.Costs.Total())/float64(base.Total())))
	}
}

func countAlong(extent, off, step, win int) int {
	n := 0
	for pos := off; pos < extent; pos += step {
		if pos+win > 0 {
			n++
		}
		if n > 1<<20 {
			break
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func mustScan(s, format string, args ...interface{}) {
	if _, err := fmt.Sscanf(s, format, args...); err != nil {
		fatal(fmt.Errorf("cannot parse %q: %w", s, err))
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "authblock: interrupted:", err)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "authblock:", err)
	os.Exit(1)
}
