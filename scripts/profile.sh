#!/usr/bin/env bash
# Captures CPU and heap profiles from a representative workload and prints
# the top entries. Two modes:
#
#   scripts/profile.sh bench [pkg] [benchmark]   # profile a microbenchmark
#   scripts/profile.sh run [cmd] [args...]       # profile a binary end-to-end
#
# Defaults profile the step-1 mapper search benchmark. Examples:
#
#   scripts/profile.sh bench                          # BenchmarkMapperSearch
#   scripts/profile.sh bench ./internal/core BenchmarkAnnealSegment
#   scripts/profile.sh run experiments -fig 10 -quick -out ''
#   scripts/profile.sh run dse -iters 20
#
# Profiles land in profiles/; inspect interactively with
#   go tool pprof profiles/cpu.out
#   go tool pprof -sample_index=alloc_objects profiles/mem.out
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p profiles

mode="${1:-bench}"
case "$mode" in
bench)
	pkg="${2:-./internal/mapper}"
	bench="${3:-BenchmarkMapperSearch}"
	go test "$pkg" -run '^$' -bench "^${bench}\$" -benchtime 5x -benchmem \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out
	;;
run)
	shift
	cmd="${1:-experiments}"
	if [ $# -gt 0 ]; then shift; fi
	go run "./cmd/$cmd" -cpuprofile profiles/cpu.out -memprofile profiles/mem.out "$@"
	;;
*)
	echo "usage: scripts/profile.sh bench [pkg] [benchmark] | run [cmd] [args...]" >&2
	exit 2
	;;
esac

echo >&2
echo "=== top CPU ===" >&2
go tool pprof -top -nodecount=15 profiles/cpu.out 2>/dev/null | sed -n '1,22p'
echo >&2
echo "=== top allocated objects ===" >&2
go tool pprof -top -nodecount=15 -sample_index=alloc_objects profiles/mem.out 2>/dev/null | sed -n '1,22p'
echo >&2
echo "profiles written to profiles/cpu.out and profiles/mem.out" >&2
