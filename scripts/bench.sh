#!/usr/bin/env bash
# Measures the persistent content-addressed result store: a cold design-
# space sweep (fresh store, empty caches, every schedule computed and
# written behind) against the warm sweep that replays the same requests
# from disk, and emits BENCH_PR7.json.
#
# Before any timing, the byte-identity acceptance tests run
# (TestSweepStoreWarmEquivalence: warm DesignPoints == cold across a
# workload x arch x crypto matrix; TestSweepStoreWarmFewerEvals: >= 10x
# fewer mapper evaluations and AuthBlock optimal searches on the
# perturbed-request path) — the JSON records that they passed, so a warm
# number can never be reported for a store that changes results.
#
# Both numbers are measured live in the same run: BenchmarkSweepStoreCold
# is the recompute-every-run path the store replaces, BenchmarkSweepStoreWarm
# the replay path, with its cold-evals / warm-evals work counters (mapper
# tiling evaluations + AuthBlock optimal searches).
#
# Every extracted metric is validated non-empty before the JSON is
# assembled: if a benchmark is renamed or deleted, the script fails with a
# non-zero exit naming the missing metric instead of emitting broken JSON.
#
# Earlier PR artifacts (BENCH_PR1/2/4/6.json) are historical records; this
# script now measures the PR7 surface.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR7.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running warm-replay byte-identity tests..." >&2
go test ./internal/dse -run '^(TestSweepStoreWarmEquivalence|TestSweepStoreWarmFewerEvals)$' -count=1 >&2

echo "running BenchmarkSweepStoreCold (3x, -benchmem)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepStoreCold$' -benchtime 3x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkSweepStoreWarm (10x, -benchmem)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepStoreWarm$' -benchtime 10x -benchmem | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

# require NAME UNIT -> like metric, but fails the script when the metric is
# absent (renamed/deleted benchmark, missing -benchmem column).
require() {
	local v
	v="$(metric "$1" "$2")"
	if [ -z "$v" ]; then
		echo "bench.sh: benchmark metric not found: $1 $2 (renamed or deleted?)" >&2
		echo "bench.sh: raw output was:" >&2
		cat "$tmp" >&2
		exit 1
	fi
	printf '%s' "$v"
}

cold_ns="$(require BenchmarkSweepStoreCold ns/op)"
cold_bytes="$(require BenchmarkSweepStoreCold B/op)"
cold_allocs="$(require BenchmarkSweepStoreCold allocs/op)"
warm_ns="$(require BenchmarkSweepStoreWarm ns/op)"
warm_bytes="$(require BenchmarkSweepStoreWarm B/op)"
warm_allocs="$(require BenchmarkSweepStoreWarm allocs/op)"
cold_evals="$(require BenchmarkSweepStoreWarm cold-evals)"
warm_evals="$(require BenchmarkSweepStoreWarm warm-evals/op)"

speedup="$(awk -v a="$cold_ns" -v b="$warm_ns" 'BEGIN { printf "%.2f", a / b }')"
# Eval-reduction ratio; a fully-replayed warm sweep evaluates 0, so clamp
# the divisor to 1 (the ratio is then "at least" cold_evals).
eval_ratio="$(awk -v a="$cold_evals" -v b="$warm_evals" 'BEGIN { printf "%.1f", a / (b < 1 ? 1 : b) }')"

cat >"$OUT" <<EOF
{
  "pr": 7,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench -benchmem; -benchtime 3x (cold), 10x (warm); serial guided CryptOptSingle sweep of AlexNet over 3 GLB sizes x 2 crypto engines, all in-memory caches dropped before every iteration so only the persistent store can answer",
  "note": "before = BenchmarkSweepStoreCold, the recompute-every-run path (fresh store, empty caches). after = BenchmarkSweepStoreWarm, the same sweep replayed from the store a cold run wrote. evals = mapper tiling evaluations + AuthBlock optimal searches; eval_reduction_ratio divides cold by warm clamped to >= 1. Byte-identity of warm results is asserted by TestSweepStoreWarmEquivalence (DesignPoint equality over an AlexNet/ResNet18 x arch x crypto matrix) and TestScheduleNetworkStoreRoundTrip (deep equality down to tiling factors), run before the benchmarks.",
  "warm_byte_identical_to_cold": true,
  "benchmarks": {
    "BenchmarkSweepStoreCold": {
      "ns_per_op": ${cold_ns},
      "bytes_per_op": ${cold_bytes},
      "allocs_per_op": ${cold_allocs}
    },
    "BenchmarkSweepStoreWarm": {
      "ns_per_op": ${warm_ns},
      "bytes_per_op": ${warm_bytes},
      "allocs_per_op": ${warm_allocs},
      "cold_evals": ${cold_evals},
      "warm_evals_per_op": ${warm_evals},
      "eval_reduction_ratio": ${eval_ratio},
      "speedup_vs_cold": ${speedup}
    }
  }
}
EOF
echo "wrote $OUT" >&2
