#!/usr/bin/env bash
# Runs the guided-mapper-search microbenchmarks (retained reference inner
# loop, exhaustive search, lower-bound-guided search, warm-started guided
# search) and emits BENCH_PR6.json with ns/op, B/op, allocs/op — and the
# guided search's cost-ratio metric (best-candidate scheduling cycles,
# guided over exhaustive, summed over all AlexNet layers; 1.000 means zero
# cost regression).
#
# All "before" numbers are measured live in the same run: the exhaustive
# BenchmarkMapperSearch is the path -guided replaces on the hot path, and
# BenchmarkMapperSearchReference is the original pre-optimisation inner
# loop retained as the equivalence-test oracle.
#
# Every extracted metric is validated non-empty before the JSON is
# assembled: if a benchmark is renamed or deleted, the script fails with a
# non-zero exit naming the missing metric instead of emitting broken JSON
# (earlier revisions interpolated empty strings silently).
#
# Earlier PR artifacts (BENCH_PR1/2/4.json) are historical records; this
# script now measures the PR6 surface.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR6.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running BenchmarkMapperSearchReference (3x, -benchmem)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperSearchReference$' -benchtime 3x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkMapperSearch (10x, -benchmem)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperSearch$' -benchtime 10x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkMapperGuided (50x, -benchmem)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperGuided$' -benchtime 50x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkMapperWarmStart (50x, -benchmem)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperWarmStart$' -benchtime 50x -benchmem | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

# require NAME UNIT -> like metric, but fails the script when the metric is
# absent (renamed/deleted benchmark, missing -benchmem column).
require() {
	local v
	v="$(metric "$1" "$2")"
	if [ -z "$v" ]; then
		echo "bench.sh: benchmark metric not found: $1 $2 (renamed or deleted?)" >&2
		echo "bench.sh: raw output was:" >&2
		cat "$tmp" >&2
		exit 1
	fi
	printf '%s' "$v"
}

ref_ns="$(require BenchmarkMapperSearchReference ns/op)"
ref_bytes="$(require BenchmarkMapperSearchReference B/op)"
ref_allocs="$(require BenchmarkMapperSearchReference allocs/op)"
ex_ns="$(require BenchmarkMapperSearch ns/op)"
ex_bytes="$(require BenchmarkMapperSearch B/op)"
ex_allocs="$(require BenchmarkMapperSearch allocs/op)"
gd_ns="$(require BenchmarkMapperGuided ns/op)"
gd_bytes="$(require BenchmarkMapperGuided B/op)"
gd_allocs="$(require BenchmarkMapperGuided allocs/op)"
gd_cost="$(require BenchmarkMapperGuided cost-ratio)"
warm_ns="$(require BenchmarkMapperWarmStart ns/op)"
warm_bytes="$(require BenchmarkMapperWarmStart B/op)"
warm_allocs="$(require BenchmarkMapperWarmStart allocs/op)"

speedup="$(awk -v a="$ex_ns" -v b="$gd_ns" 'BEGIN { printf "%.2f", a / b }')"

cat >"$OUT" <<EOF
{
  "pr": 6,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench -benchmem; -benchtime 3x (reference), 10x (exhaustive), 50x (guided, warm start); all on the AlexNet-conv2 base-arch request at k=6",
  "note": "before = the exhaustive BenchmarkMapperSearch measured live in this run (the per-layer hot path -guided replaces) and BenchmarkMapperSearchReference, the retained pre-optimisation inner loop that serves as the equivalence oracle. cost_ratio is best-candidate scheduling cycles, guided over exhaustive, summed over all AlexNet layers: 1.000 = zero cost regression (exact at the default Epsilon 0, asserted by TestGuidedSearchEquivalence). BenchmarkMapperWarmStart runs the same guided search seeded from a neighbouring design point's winners.",
  "benchmarks": {
    "BenchmarkMapperSearchReference": {
      "ns_per_op": ${ref_ns},
      "bytes_per_op": ${ref_bytes},
      "allocs_per_op": ${ref_allocs}
    },
    "BenchmarkMapperSearch": {
      "ns_per_op": ${ex_ns},
      "bytes_per_op": ${ex_bytes},
      "allocs_per_op": ${ex_allocs}
    },
    "BenchmarkMapperGuided": {
      "ns_per_op": ${gd_ns},
      "bytes_per_op": ${gd_bytes},
      "allocs_per_op": ${gd_allocs},
      "cost_ratio_vs_exhaustive": ${gd_cost},
      "speedup_vs_exhaustive": ${speedup}
    },
    "BenchmarkMapperWarmStart": {
      "ns_per_op": ${warm_ns},
      "bytes_per_op": ${warm_bytes},
      "allocs_per_op": ${warm_allocs}
    }
  }
}
EOF
echo "wrote $OUT" >&2
