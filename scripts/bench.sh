#!/usr/bin/env bash
# Runs the three hot-path microbenchmarks (step-1 mapper search, segment
# annealing, design-space sweep) and emits BENCH_PR1.json with ns/op for
# each, alongside the pre-optimisation baseline numbers (the serial
# implementation at the growth seed, measured with the same protocol:
# -benchtime 5x/50x/5x on an Intel Xeon @ 2.10GHz).
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR1.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running BenchmarkMapperSearch (5x)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperSearch$' -benchtime 5x | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkAnnealSegment (50x)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkAnnealSegment$' -benchtime 50x | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkSweepParallel (5x)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepParallel$' -benchtime 5x | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

mapper_ns="$(metric BenchmarkMapperSearch ns/op)"
anneal_full_ns="$(metric BenchmarkAnnealSegment/full ns/op)"
anneal_full_evals="$(metric BenchmarkAnnealSegment/full layer-evals/move)"
anneal_inc_ns="$(metric BenchmarkAnnealSegment/incremental ns/op)"
anneal_inc_evals="$(metric BenchmarkAnnealSegment/incremental layer-evals/move)"
sweep_ns="$(metric BenchmarkSweepParallel ns/op)"

cat >"$OUT" <<EOF
{
  "pr": 1,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench, -benchtime 5x (mapper, sweep) / 50x (anneal)",
  "note": "before = serial implementation at the growth seed (commit 06e3dc4), same machine and protocol; after = this run. BenchmarkAnnealSegment/full re-measures the old whole-segment recomputation path inside the new code for the layer-evals comparison.",
  "benchmarks": {
    "BenchmarkMapperSearch": {
      "before_ns_per_op": 505689964,
      "after_ns_per_op": ${mapper_ns}
    },
    "BenchmarkAnnealSegment": {
      "before_ns_per_op": 2788918,
      "before_layer_evals_per_move": 5.0,
      "after_ns_per_op": ${anneal_inc_ns},
      "after_layer_evals_per_move": ${anneal_inc_evals},
      "full_recompute_ns_per_op": ${anneal_full_ns},
      "full_recompute_layer_evals_per_move": ${anneal_full_evals}
    },
    "BenchmarkSweepParallel": {
      "before_ns_per_op": 28189683,
      "after_ns_per_op": ${sweep_ns}
    }
  }
}
EOF
echo "wrote $OUT" >&2
