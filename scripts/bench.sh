#!/usr/bin/env bash
# Runs the batched-AuthBlock-assignment microbenchmarks (cold optimal
# search, cold segment annealing pipeline, steady-state annealing move,
# pair-matrix precompute, end-to-end Crypt-Opt-Cross schedule) and emits
# BENCH_PR4.json with ns/op — and, where allocation behaviour is the
# claim, B/op and allocs/op.
#
# The "before" numbers are measured live in the same run wherever a
# reference path is retained in-tree: BenchmarkAuthBlockOptimalReference
# (the pre-batching orientation-outer search) and
# BenchmarkAnnealSegment/reference (annealing with on-demand per-move
# AuthBlock searches instead of precomputed pair matrices). The
# end-to-end before is historical: the same AlexNet Crypt-Opt-Cross
# benchmark body run at commit a5ae23a (pre-PR4 HEAD) on the same
# machine (Intel Xeon @ 2.10GHz, -benchtime 3x).
#
# Earlier PR artifacts (BENCH_PR1.json, BENCH_PR2.json) are historical
# records; this script now measures the PR4 surface. BenchmarkAnnealSegment
# modes were renamed full/incremental -> reference/batched in PR4, so the
# old BENCH_PR2 extraction no longer applies.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR4.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running BenchmarkAuthBlockOptimal + reference (20x, -benchmem)..." >&2
go test ./internal/authblock -run '^$' -bench '^BenchmarkAuthBlockOptimal(Reference)?$' -benchtime 20x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkAnnealSegment reference/batched (3x)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkAnnealSegment$' -benchtime 3x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkAnnealMove (2s, -benchmem)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkAnnealMove$' -benchtime 2s -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkPairMatrix (5x)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkPairMatrix$' -benchtime 5x | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkScheduleNetworkCross (3x)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkScheduleNetworkCross$' -benchtime 3x | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

opt_ns="$(metric BenchmarkAuthBlockOptimal ns/op)"
opt_allocs="$(metric BenchmarkAuthBlockOptimal allocs/op)"
optref_ns="$(metric BenchmarkAuthBlockOptimalReference ns/op)"
optref_allocs="$(metric BenchmarkAuthBlockOptimalReference allocs/op)"
seg_ref_ns="$(metric BenchmarkAnnealSegment/reference ns/op)"
seg_ref_evals="$(metric BenchmarkAnnealSegment/reference layer-evals/move)"
seg_bat_ns="$(metric BenchmarkAnnealSegment/batched ns/op)"
seg_bat_evals="$(metric BenchmarkAnnealSegment/batched layer-evals/move)"
move_ns="$(metric BenchmarkAnnealMove ns/op)"
move_bytes="$(metric BenchmarkAnnealMove B/op)"
move_allocs="$(metric BenchmarkAnnealMove allocs/op)"
pair_ns="$(metric BenchmarkPairMatrix ns/op)"
cross_ns="$(metric BenchmarkScheduleNetworkCross ns/op)"

cat >"$OUT" <<EOF
{
  "pr": 4,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench; -benchtime 20x -benchmem (authblock optimal), 3x -benchmem (anneal segment), 2s -benchmem (anneal move), 5x (pair matrix), 3x (schedule cross)",
  "note": "before = the retained reference paths measured live in this run: BenchmarkAuthBlockOptimalReference is the pre-batching orientation-outer search (the TestOptimalMatchesReference oracle), BenchmarkAnnealSegment/reference anneals with on-demand AuthBlock searches instead of precomputed pair matrices. Both variants run from a cold AuthBlock cache each iteration. The end-to-end before_ns_per_op is the same benchmark body run at pre-PR4 HEAD (a5ae23a) on the same machine.",
  "benchmarks": {
    "BenchmarkAuthBlockOptimal": {
      "reference_ns_per_op": ${optref_ns},
      "reference_allocs_per_op": ${optref_allocs},
      "after_ns_per_op": ${opt_ns},
      "after_allocs_per_op": ${opt_allocs}
    },
    "BenchmarkAnnealSegment": {
      "reference_ns_per_op": ${seg_ref_ns},
      "reference_layer_evals_per_move": ${seg_ref_evals},
      "batched_ns_per_op": ${seg_bat_ns},
      "batched_layer_evals_per_move": ${seg_bat_evals}
    },
    "BenchmarkAnnealMove": {
      "after_ns_per_op": ${move_ns},
      "after_bytes_per_op": ${move_bytes},
      "after_allocs_per_op": ${move_allocs}
    },
    "BenchmarkPairMatrix": {
      "after_ns_per_op": ${pair_ns}
    },
    "BenchmarkScheduleNetworkCross": {
      "before_ns_per_op": 1291156144,
      "after_ns_per_op": ${cross_ns}
    }
  }
}
EOF
echo "wrote $OUT" >&2
