#!/usr/bin/env bash
# Runs the hot-path microbenchmarks (step-1 mapper search, segment
# annealing, design-space sweep) and emits BENCH_PR2.json with ns/op —
# and, for the mapper, B/op and allocs/op — alongside the baselines:
# the "before" numbers are the BENCH_PR1.json "after" numbers (the
# parallel search with clone-per-tiling inner loop), measured with the
# same protocol (-benchtime 5x/50x/5x on an Intel Xeon @ 2.10GHz).
# BenchmarkMapperSearchReference additionally re-measures the retained
# pre-optimisation inner loop live, so the allocation comparison is
# machine-local rather than historical.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR2.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running BenchmarkMapperSearch + reference (5x, -benchmem)..." >&2
go test ./internal/mapper -run '^$' -bench '^BenchmarkMapperSearch(Reference)?$' -benchtime 5x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkAnnealSegment (50x)..." >&2
go test ./internal/core -run '^$' -bench '^BenchmarkAnnealSegment$' -benchtime 50x | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkSweepParallel (5x)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepParallel$' -benchtime 5x | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

mapper_ns="$(metric BenchmarkMapperSearch ns/op)"
mapper_bytes="$(metric BenchmarkMapperSearch B/op)"
mapper_allocs="$(metric BenchmarkMapperSearch allocs/op)"
ref_ns="$(metric BenchmarkMapperSearchReference ns/op)"
ref_bytes="$(metric BenchmarkMapperSearchReference B/op)"
ref_allocs="$(metric BenchmarkMapperSearchReference allocs/op)"
anneal_full_ns="$(metric BenchmarkAnnealSegment/full ns/op)"
anneal_full_evals="$(metric BenchmarkAnnealSegment/full layer-evals/move)"
anneal_inc_ns="$(metric BenchmarkAnnealSegment/incremental ns/op)"
anneal_inc_evals="$(metric BenchmarkAnnealSegment/incremental layer-evals/move)"
sweep_ns="$(metric BenchmarkSweepParallel ns/op)"

cat >"$OUT" <<EOF
{
  "pr": 2,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench, -benchtime 5x -benchmem (mapper), 50x (anneal), 5x (sweep)",
  "note": "before = BENCH_PR1.json after numbers (parallel search, clone-per-tiling inner loop), same machine and protocol; after = this run. The reference_* fields re-measure the retained pre-optimisation inner loop (searchReference, the TestSearchEquivalence oracle) live in this run, giving a machine-local before for time and allocations.",
  "benchmarks": {
    "BenchmarkMapperSearch": {
      "before_ns_per_op": 455690259,
      "after_ns_per_op": ${mapper_ns},
      "after_bytes_per_op": ${mapper_bytes},
      "after_allocs_per_op": ${mapper_allocs},
      "reference_ns_per_op": ${ref_ns},
      "reference_bytes_per_op": ${ref_bytes},
      "reference_allocs_per_op": ${ref_allocs}
    },
    "BenchmarkAnnealSegment": {
      "before_ns_per_op": 844582,
      "before_layer_evals_per_move": 1.066,
      "after_ns_per_op": ${anneal_inc_ns},
      "after_layer_evals_per_move": ${anneal_inc_evals},
      "full_recompute_ns_per_op": ${anneal_full_ns},
      "full_recompute_layer_evals_per_move": ${anneal_full_evals}
    },
    "BenchmarkSweepParallel": {
      "before_ns_per_op": 4097044,
      "after_ns_per_op": ${sweep_ns}
    }
  }
}
EOF
echo "wrote $OUT" >&2
