#!/usr/bin/env bash
# Measures the dominance-pruned sweep coordinator: a cold unpruned sweep
# (every design point fully evaluated) against the same cold sweep through
# the coordinator's bound pre-pass + streaming-front pruning, plus the
# pre-pass in isolation, and emits BENCH_PR9.json.
#
# Before any timing, the byte-identity acceptance tests run
# (TestCoordinatorFrontMatchesUnpruned: the pruned front == ParetoFront of
# the unpruned sweep by DesignPoint equality, on AlexNet and ResNet18;
# TestCoordinatorShardInvariance: identical fronts across shard counts and
# worker widths) — the JSON records that they passed, so a pruned number
# can never be reported for a coordinator that changes results.
#
# All three numbers are measured live in the same run on the same space
# (AlexNet, 3 arch sizes x {parallel x1, serial x1} crypto, serial guided
# CryptOptSingle, caches dropped per iteration): BenchmarkSweepColdUnpruned
# is the evaluate-everything path, BenchmarkSweepColdPruned the coordinator
# with -prune, BenchmarkSweepBoundsPrepass the bound pre-pass alone.
#
# Every extracted metric is validated non-empty before the JSON is
# assembled: if a benchmark is renamed or deleted, the script fails with a
# non-zero exit naming the missing metric instead of emitting broken JSON.
#
# Earlier PR artifacts (BENCH_PR1/2/4/6/7.json) are historical records;
# this script now measures the PR9 surface.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR9.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running pruned-front byte-identity tests..." >&2
go test ./internal/dse -run '^(TestCoordinatorFrontMatchesUnpruned|TestCoordinatorShardInvariance)$' -count=1 >&2

echo "running BenchmarkSweepColdUnpruned (3x, -benchmem)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepColdUnpruned$' -benchtime 3x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkSweepColdPruned (3x, -benchmem)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepColdPruned$' -benchtime 3x -benchmem | grep -E '^Benchmark' >>"$tmp"
echo "running BenchmarkSweepBoundsPrepass (10x)..." >&2
go test ./internal/dse -run '^$' -bench '^BenchmarkSweepBoundsPrepass$' -benchtime 10x | grep -E '^Benchmark' >>"$tmp"

# metric NAME UNIT -> value of the column preceding UNIT on NAME's row.
metric() {
	awk -v n="$1" -v m="$2" '$1 ~ "^"n"(-[0-9]+)?$" {
		for (i = 2; i <= NF; i++) if ($i == m) print $(i-1)
	}' "$tmp"
}

# require NAME UNIT -> like metric, but fails the script when the metric is
# absent (renamed/deleted benchmark, missing -benchmem column).
require() {
	local v
	v="$(metric "$1" "$2")"
	if [ -z "$v" ]; then
		echo "bench.sh: benchmark metric not found: $1 $2 (renamed or deleted?)" >&2
		echo "bench.sh: raw output was:" >&2
		cat "$tmp" >&2
		exit 1
	fi
	printf '%s' "$v"
}

unpruned_ns="$(require BenchmarkSweepColdUnpruned ns/op)"
unpruned_bytes="$(require BenchmarkSweepColdUnpruned B/op)"
unpruned_allocs="$(require BenchmarkSweepColdUnpruned allocs/op)"
unpruned_evals="$(require BenchmarkSweepColdUnpruned full-evals/op)"
pruned_ns="$(require BenchmarkSweepColdPruned ns/op)"
pruned_bytes="$(require BenchmarkSweepColdPruned B/op)"
pruned_allocs="$(require BenchmarkSweepColdPruned allocs/op)"
pruned_evals="$(require BenchmarkSweepColdPruned full-evals/op)"
pruned_skipped="$(require BenchmarkSweepColdPruned pruned/op)"
prepass_ns="$(require BenchmarkSweepBoundsPrepass ns/op)"

speedup="$(awk -v a="$unpruned_ns" -v b="$pruned_ns" 'BEGIN { printf "%.2f", a / b }')"
prepass_pct="$(awk -v a="$prepass_ns" -v b="$unpruned_ns" 'BEGIN { printf "%.3f", 100 * a / b }')"

# The pruned sweep must beat the unpruned baseline on both wall time and
# full evaluations, and the pre-pass must stay under 5% of the cold sweep —
# the PR's acceptance criteria, enforced here so a regression can never
# silently ship a worse JSON.
awk -v a="$unpruned_ns" -v b="$pruned_ns" 'BEGIN { exit !(b < a) }' || {
	echo "bench.sh: pruned sweep (${pruned_ns} ns/op) not faster than unpruned (${unpruned_ns} ns/op)" >&2
	exit 1
}
awk -v a="$unpruned_evals" -v b="$pruned_evals" 'BEGIN { exit !(b < a) }' || {
	echo "bench.sh: pruned sweep (${pruned_evals} evals/op) not fewer than unpruned (${unpruned_evals})" >&2
	exit 1
}
awk -v p="$prepass_pct" 'BEGIN { exit !(p < 5) }' || {
	echo "bench.sh: bound pre-pass is ${prepass_pct}% of the cold sweep (>= 5%)" >&2
	exit 1
}

cat >"$OUT" <<EOF
{
  "pr": 9,
  "generated_by": "scripts/bench.sh",
  "protocol": "go test -bench -benchmem; -benchtime 3x (sweeps), 10x (pre-pass); serial guided CryptOptSingle sweep of AlexNet over 3 arch sizes x {parallel x1, serial x1} crypto engines, all in-memory caches dropped before every iteration (cold)",
  "note": "before = BenchmarkSweepColdUnpruned, the evaluate-every-point sweep. after = BenchmarkSweepColdPruned, the same cold sweep through the dominance-pruned coordinator (bound pre-pass + streaming Pareto front, 2 shards). BenchmarkSweepBoundsPrepass is the pre-pass alone; prepass_pct_of_cold_sweep divides it by the unpruned sweep. Byte-identity of the pruned front is asserted by TestCoordinatorFrontMatchesUnpruned (DesignPoint equality vs ParetoFront of the unpruned sweep, AlexNet and ResNet18) and TestCoordinatorShardInvariance (identical fronts across shard/worker configurations), run before the benchmarks.",
  "pruned_front_byte_identical_to_unpruned": true,
  "benchmarks": {
    "BenchmarkSweepColdUnpruned": {
      "ns_per_op": ${unpruned_ns},
      "bytes_per_op": ${unpruned_bytes},
      "allocs_per_op": ${unpruned_allocs},
      "full_evals_per_op": ${unpruned_evals}
    },
    "BenchmarkSweepColdPruned": {
      "ns_per_op": ${pruned_ns},
      "bytes_per_op": ${pruned_bytes},
      "allocs_per_op": ${pruned_allocs},
      "full_evals_per_op": ${pruned_evals},
      "points_pruned_per_op": ${pruned_skipped},
      "speedup_vs_unpruned": ${speedup}
    },
    "BenchmarkSweepBoundsPrepass": {
      "ns_per_op": ${prepass_ns},
      "prepass_pct_of_cold_sweep": ${prepass_pct}
    }
  }
}
EOF
echo "wrote $OUT" >&2
