#!/usr/bin/env bash
# Runs the repo-specific static-analysis suite (cmd/securelint) over the
# whole module and fails on any finding. The suite enforces the invariants
# the perf work depends on — centralised ceiling division, int64-safe
# dimension/tile products, no order-sensitive map iteration, the
# `guarded by <mu>` lock annotations, no exact float equality in
# cost/energy code, context-first signatures on exported search-path
# functions, and the two interprocedural checks (keydrift: persisted cache
# keys encode every request field; puredet: cached paths are deterministic);
# see DESIGN.md ("Enforced invariants").
#
# A gofmt gate runs first: unformatted files fail before the analysis does.
#
# Usage: scripts/lint.sh [securelint flags] [packages]
#   scripts/lint.sh                 # gofmt gate + lint ./...
#   scripts/lint.sh -json ./...     # machine-readable findings
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

if [ "$#" -eq 0 ]; then
	set -- ./...
fi
exec go run ./cmd/securelint "$@"
