#!/usr/bin/env bash
# Runs the repo-specific static-analysis suite (cmd/securelint) over the
# whole module and fails on any finding. The suite enforces the invariants
# the perf work depends on — centralised ceiling division, int64-safe
# dimension/tile products, no order-sensitive map iteration, the
# `guarded by <mu>` lock annotations, no exact float equality in
# cost/energy code, and context-first signatures on exported search-path
# functions; see DESIGN.md ("Enforced invariants").
#
# Usage: scripts/lint.sh [securelint flags] [packages]
#   scripts/lint.sh                 # lint ./...
#   scripts/lint.sh -json ./...     # machine-readable findings
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
	set -- ./...
fi
exec go run ./cmd/securelint "$@"
