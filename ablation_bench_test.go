// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the paper's own figures: the tree-less-vs-Merkle metadata gap, TEE
// entry/exit amortisation, annealing temperature sensitivity, and the
// analytic-vs-brute AuthBlock counting speedup that makes the Section 4.2
// search tractable.
package secureloop_test

import (
	"context"
	"testing"

	"secureloop/internal/anneal"
	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/experiments"
	"secureloop/internal/merkle"
	"secureloop/internal/tee"
	"secureloop/internal/workload"
)

// BenchmarkAblationMerkleVsTreeless quantifies the metadata-traffic gap
// between a general-purpose Bonsai-Merkle TEE and the tree-less AuthBlock
// scheme, for each workload's off-chip footprint (Section 6 argument).
func BenchmarkAblationMerkleVsTreeless(b *testing.B) {
	tree := merkle.DefaultTree()
	for i := 0; i < b.N; i++ {
		for _, net := range workload.Networks() {
			var access, footprint int64
			for j := range net.Layers {
				l := &net.Layers[j]
				access += l.TotalVolume() * int64(l.WordBits) / 8
				footprint += l.VolumeBits(workload.Weight) / 8
			}
			treeBits := tree.ExtraTrafficBits(access, footprint)
			flatBits := merkle.TreelessTrafficBits(access, 1024, 64)
			b.ReportMetric(float64(treeBits)/float64(flatBits), net.Name+"_tree_over_flat")
		}
	}
}

// BenchmarkAblationTEEAmortization reports the end-to-end entry/exit
// overhead for 1 vs 1000 served inferences (Section 5.2's entry/exit
// discussion).
func BenchmarkAblationTEEAmortization(b *testing.B) {
	cfg := tee.Default()
	net := workload.ResNet18()
	spec := arch.Base()
	for i := 0; i < b.N; i++ {
		s := core.New(spec, cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
		s.Anneal.Iterations = 100
		res, err := s.ScheduleNetwork(net, core.CryptOptSingle)
		if err != nil {
			b.Fatal(err)
		}
		inferSec := float64(res.Total.Cycles) / spec.ClockHz
		b.ReportMetric(cfg.AmortizedOverheadPct(net, inferSec, 1), "overhead_pct_1req")
		b.ReportMetric(cfg.AmortizedOverheadPct(net, inferSec, 1000), "overhead_pct_1000req")
	}
}

// BenchmarkAblationAnnealTemperature compares the paper's linear schedule
// at three initial temperatures on AlexNet's conv3-5 segment, reporting the
// relative cycles found (lower is better).
func BenchmarkAblationAnnealTemperature(b *testing.B) {
	net := workload.AlexNet()
	spec := arch.Base()
	for i := 0; i < b.N; i++ {
		for _, tInit := range []float64{0.005, 0.05, 0.5} {
			s := core.New(spec, cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
			s.Anneal = anneal.Options{Iterations: 400, TInit: tInit, TFinal: 1e-4, Seed: 1}
			res, err := s.ScheduleNetwork(net, core.CryptOptCross)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Total.Cycles)/1e6, "Mcycles_T"+fmtT(tInit))
		}
	}
}

func fmtT(t float64) string {
	switch {
	case t < 0.01:
		return "low"
	case t < 0.1:
		return "mid"
	default:
		return "high"
	}
}

// BenchmarkAuthBlockCountingAnalytic measures the Section 4.2 congruence
// counting on a production-sized tile, and ...Brute its enumeration
// equivalent — the speedup is what makes the exhaustive AuthBlock search
// feasible.
func BenchmarkAuthBlockCountingAnalytic(b *testing.B) {
	box := authblock.Box{C0: 0, C1: 32, P0: 3, P1: 27, Q0: 5, Q1: 55}
	for i := 0; i < b.N; i++ {
		authblock.CountBoxBlocks(32, 28, 56, box, authblock.AlongQ, 37)
	}
}

// BenchmarkAuthBlockOptimalSearch measures one full optimal-assignment
// search for a realistic cross-layer pair geometry.
func BenchmarkAuthBlockOptimalSearch(b *testing.B) {
	p := authblock.ProducerGrid{C: 64, H: 56, W: 56, TileC: 16, TileH: 14, TileW: 56, WritesPerTile: 1}
	c := authblock.ConsumerGrid{
		TileC: 16, WinH: 16, WinW: 58, StepH: 14, StepW: 56,
		OffH: -1, OffW: -1, CountC: 4, CountH: 4, CountW: 1,
		FetchesPerTile: 1,
	}
	par := authblock.DefaultParams()
	for i := 0; i < b.N; i++ {
		authblock.Optimal(p, c, par)
	}
}

// BenchmarkAblationObjective compares the latency and EDP fine-tuning
// objectives on ResNet18, reporting both metrics under each.
func BenchmarkAblationObjective(b *testing.B) {
	net := workload.ResNet18()
	spec := arch.Base()
	for i := 0; i < b.N; i++ {
		for _, obj := range []core.Objective{core.MinLatency, core.MinEDP} {
			s := core.New(spec, cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1})
			s.Anneal.Iterations = 400
			s.Objective = obj
			res, err := s.ScheduleNetwork(net, core.CryptOptCross)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Total.Cycles)/1e6, "Mcycles_"+obj.String())
			b.ReportMetric(res.Total.EDP()/1e15, "EDPe15_"+obj.String())
		}
	}
}

// BenchmarkAblationHashSize runs the tag-width sensitivity study
// (security/traffic trade-off beyond the paper's fixed hash size).
func BenchmarkAblationHashSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.HashSizeStudy(context.Background(), experiments.Options{Quick: testing.Short()})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 3 {
			b.Fatalf("%d rows", len(t.Rows))
		}
	}
}
