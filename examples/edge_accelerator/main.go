// Edge accelerator study: the paper's Section 3.1 motivation made concrete.
// A low-power edge device (Eyeriss-class) cannot afford the 416.7 kGates of
// fully-pipelined AES-GCM engines that prior work assumed for TPU-scale
// accelerators — that is ~35% of its logic area. This example uses
// SecureLoop to pick a cryptographic engine for an edge design running
// MobileNetV2: it evaluates every Table 2 engine at several counts and
// prints the latency/area frontier, showing that a moderate number of
// higher-throughput engines beats many small serial ones (Section 5.2).
package main

import (
	"fmt"
	"os"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/workload"
)

func main() {
	net := workload.MobileNetV2()
	spec := arch.Base()

	base, err := core.New(spec, cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}).
		ScheduleNetwork(net, core.Unsecure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("edge design: %dx%d PEs, %d kB buffer, workload %s\n",
		spec.PEsX, spec.PEsY, spec.GlobalBufferBytes/1024, net.Name)
	fmt.Printf("unsecure latency: %d cycles\n\n", base.Total.Cycles)

	fmt.Printf("%-16s %10s %12s %10s %14s %12s\n",
		"engine", "slowdown", "cycles", "kGates", "area_overhead", "engine_bw")

	type candidate struct {
		engine cryptoengine.EngineArch
		counts []int
	}
	candidates := []candidate{
		{cryptoengine.Serial(), []int{1, 10, 30}},
		{cryptoengine.Parallel(), []int{1, 2, 5}},
		{cryptoengine.Pipelined(), []int{1}},
	}
	for _, cand := range candidates {
		for _, n := range cand.counts {
			cfg := cryptoengine.Config{Engine: cand.engine, CountPerDatatype: n}
			s := core.New(spec, cfg)
			s.Anneal.Iterations = 200
			res, err := s.ScheduleNetwork(net, core.CryptOptCross)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %10.2f %12d %10.1f %13.1f%% %9.2f B/c\n",
				cfg.String(),
				float64(res.Total.Cycles)/float64(base.Total.Cycles),
				res.Total.Cycles,
				cfg.TotalAreaKGates(),
				accelergy.CryptoAreaOverheadPercent(cfg.TotalAreaKGates(), spec.NumPEs()),
				cfg.DatatypeBytesPerCycle())
		}
	}

	fmt.Println("\nreading the table: low-throughput serial engines bottleneck the")
	fmt.Println("accelerator even in bulk, while one parallel engine per datatype")
	fmt.Println("reaches similar latency at a tenth of the area (Section 5.2).")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
