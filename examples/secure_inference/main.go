// Secure inference data path: an end-to-end functional demonstration of
// what SecureLoop schedules. A producer layer writes its ofmap to
// simulated untrusted DRAM under the scheduler's optimal AuthBlock
// assignment — every block AES-GCM encrypted and tagged with a
// counter/address seed (paper Figure 2). The consumer layer then reads its
// ifmap tiles back: every touched AuthBlock is fetched, its tag verified,
// and the plaintext decrypted. The measured traffic matches the analytic
// model exactly, and a simulated RowHammer-style bit flip in DRAM is caught
// by tag verification.
package main

import (
	"fmt"
	"os"

	"secureloop/internal/authblock"
	"secureloop/internal/num"
	"secureloop/internal/trace"
)

func main() {
	// A small cross-layer tensor handoff: 16-channel 28x28 ofmap produced
	// in 8x14x14 tiles, consumed through 16x16 windows stepping by 14
	// (2-row halo) — the Section 3.2 geometry at test size.
	p := authblock.ProducerGrid{
		C: 16, H: 28, W: 28,
		TileC: 8, TileH: 14, TileW: 14,
		WritesPerTile: 1,
	}
	c := authblock.ConsumerGrid{
		TileC: 4,
		WinH:  16, WinW: 16,
		StepH: 14, StepW: 14,
		OffH: -1, OffW: -1,
		CountC: 4, CountH: 2, CountW: 2,
		FetchesPerTile: 1,
	}
	par := authblock.Params{WordBits: 8, HashBits: 64}

	opt := authblock.Optimal(p, c, par)
	fmt.Printf("optimal AuthBlock assignment: %s, u=%d elements\n",
		opt.Assignment.Orientation, opt.Assignment.U)
	fmt.Printf("predicted extra traffic: hash %d bits, redundant %d bits\n\n",
		opt.Costs.HashBitsTotal(), opt.Costs.RedundantBits)

	key := []byte("secureloop-key16")
	st, err := trace.NewSecureTensor(p, opt.Assignment, key, par.HashBits/8)
	if err != nil {
		fatal(err)
	}

	// Producer: generate and write every ofmap tile (encrypt + tag).
	ref := make([]byte, num.MulInt(num.MulInt(p.C, p.H), p.W))
	for i := range ref {
		ref[i] = byte(3*i + 1)
	}
	nc, nh, nw := p.Counts()
	for ti := 0; ti < nc; ti++ {
		for tj := 0; tj < nh; tj++ {
			for tk := 0; tk < nw; tk++ {
				if err := writeTile(st, p, ref, ti, tj, tk); err != nil {
					fatal(err)
				}
			}
		}
	}
	fmt.Printf("producer wrote %d tiles: %d data elements, %d tags\n",
		p.NumTiles(), st.DataWriteElems, st.TagWrites)

	// Consumer: read every ifmap window (fetch blocks, verify, decrypt).
	st.TagReads, st.RedundantElems, st.DataReadElems = 0, 0, 0
	for ic := 0; ic < c.CountC; ic++ {
		for ih := 0; ih < c.CountH; ih++ {
			for iw := 0; iw < c.CountW; iw++ {
				c0 := num.MulInt(ic, c.TileC)
				c1 := min(c0+c.TileC, p.C)
				rBase := c.OffH + num.MulInt(ih, c.StepH)
				wBase := c.OffW + num.MulInt(iw, c.StepW)
				r0, r1 := clamp(rBase, p.H), clamp(rBase+c.WinH, p.H)
				w0, w1 := clamp(wBase, p.W), clamp(wBase+c.WinW, p.W)
				got, err := st.ReadRegion(c0, c1, r0, r1, w0, w1)
				if err != nil {
					fatal(err)
				}
				// Verify a sample element against the reference tensor.
				if got[0] != ref[(c0*p.H+r0)*p.W+w0] {
					fatal(fmt.Errorf("decrypted data mismatch"))
				}
			}
		}
	}
	fmt.Printf("consumer read %d windows: %d data elements (%d redundant), %d tag fetches\n",
		c.NumTiles(), st.DataReadElems, st.RedundantElems, st.TagReads)

	// The functional path must match the analytic prediction bit for bit.
	if st.RedundantElems*int64(par.WordBits) != opt.Costs.RedundantBits {
		fatal(fmt.Errorf("redundant traffic mismatch: measured %d bits, predicted %d",
			st.RedundantElems*int64(par.WordBits), opt.Costs.RedundantBits))
	}
	if st.TagReads*int64(par.HashBits) != opt.Costs.HashReadBits {
		fatal(fmt.Errorf("tag traffic mismatch"))
	}
	fmt.Println("analytic model matches the functional data path exactly ✓")

	// Integrity: corrupt one bit of off-chip ciphertext and re-read.
	st.Tamper()
	fmt.Println("\nflipping one DRAM bit (simulated data-corruption attack)...")
	if _, err := st.ReadRegion(0, p.C, 0, p.H, 0, p.W); err != nil {
		fmt.Printf("tag verification rejected the read: %v ✓\n", err)
	} else {
		fatal(fmt.Errorf("tampering was NOT detected"))
	}
}

func writeTile(st *trace.SecureTensor, p authblock.ProducerGrid, ref []byte, ti, tj, tk int) error {
	c0, r0, w0 := num.MulInt(ti, p.TileC), num.MulInt(tj, p.TileH), num.MulInt(tk, p.TileW)
	tc, th, tw := min(p.TileC, p.C-c0), min(p.TileH, p.H-r0), min(p.TileW, p.W-w0)
	tile := make([]byte, num.MulInt(num.MulInt(tc, th), tw))
	for cc := 0; cc < tc; cc++ {
		for rr := 0; rr < th; rr++ {
			for ww := 0; ww < tw; ww++ {
				tile[(cc*th+rr)*tw+ww] = ref[((c0+cc)*p.H+r0+rr)*p.W+w0+ww]
			}
		}
	}
	return st.WriteTile(ti, tj, tk, tile)
}

func clamp(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
