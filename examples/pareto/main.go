// Pareto study: the Figure 16 workflow. Sweep the secure-accelerator
// design space (PE array x buffer size x crypto engine) on AlexNet, mark
// the area/latency Pareto front, and print the paper's two design insights:
// small buffers pair well with fast crypto engines, and big PE arrays are
// wasted on slow ones (Section 5.3).
package main

import (
	"fmt"
	"os"
	"sort"

	"secureloop/internal/accelergy"
	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/dse"
	"secureloop/internal/workload"
)

func main() {
	net := workload.AlexNet()
	specs, cryptos := dse.Figure16Space(arch.Base())

	var points []dse.DesignPoint
	for _, spec := range specs {
		for _, cfg := range cryptos {
			s := core.New(spec, cfg)
			s.Anneal.Iterations = 100
			res, err := s.ScheduleNetwork(net, core.CryptOptCross)
			if err != nil {
				fatal(err)
			}
			base, err := s.ScheduleNetwork(net, core.Unsecure)
			if err != nil {
				fatal(err)
			}
			points = append(points, dse.DesignPoint{
				Spec: spec, Crypto: cfg,
				AreaMM2: accelergy.TotalAreaMM2(
					spec.NumPEs(), spec.GlobalBufferBytes, cfg.TotalAreaKGates()),
				Cycles:         res.Total.Cycles,
				EnergyPJ:       res.Total.EnergyPJ,
				UnsecureCycles: base.Total.Cycles,
			})
			fmt.Fprint(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr)
	dse.MarkPareto(points)
	sort.Slice(points, func(i, j int) bool { return points[i].AreaMM2 < points[j].AreaMM2 })

	fmt.Printf("%-40s %9s %12s %9s %7s\n", "design", "area_mm2", "cycles", "slowdown", "pareto")
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "  *"
		}
		fmt.Printf("%-40s %9.3f %12d %9.2f %7s\n", p.Label(), p.AreaMM2, p.Cycles, p.Slowdown(), mark)
	}

	front := dse.ParetoFront(points)
	fmt.Printf("\nPareto front (%d of %d designs):\n", len(front), len(points))
	pipelinedSmallBuffer := 0
	for _, p := range front {
		fmt.Printf("  %s\n", p.Label())
		if p.Crypto.Engine.Name == "pipelined" && p.Spec.GlobalBufferBytes < 131*1024 {
			pipelinedSmallBuffer++
		}
	}
	if pipelinedSmallBuffer > 0 {
		fmt.Println("\ninsight (Section 5.3): designs that trade buffer capacity for a")
		fmt.Println("high-throughput crypto engine appear on the Pareto front — spending")
		fmt.Println("area on the engine instead of SRAM is a good deal for secure designs.")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
