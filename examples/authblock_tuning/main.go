// AuthBlock tuning: visualise the paper's Section 4.2 search space on a
// real cross-layer dependency. The example schedules two consecutive
// ResNet18 layers, extracts the producer's ofmap tiling and the consumer's
// ifmap tiling of the shared tensor, sweeps AuthBlock orientations and
// sizes, and renders the hash/redundant trade-off as an ASCII curve with
// the optimum and the tile-as-an-AuthBlock baseline marked.
package main

import (
	"fmt"
	"os"
	"strings"

	"secureloop/internal/arch"
	"secureloop/internal/authblock"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/mapper"
	"secureloop/internal/workload"
)

func main() {
	net := workload.ResNet18()
	// layer1.0.conv1 -> layer1.0.conv2: an in-segment pair (indices 1, 2).
	pair := net.CrossLayerPairs()[0]
	prod, cons := net.Layer(pair[0]), net.Layer(pair[1])
	fmt.Printf("cross-layer pair: %s (ofmap %dx%dx%d) -> %s\n\n",
		prod.Name, prod.M, prod.P, prod.Q, cons.Name)

	spec := arch.Base()
	crypto := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}
	eff := crypto.EffectiveBytesPerCycle(spec.DRAM.BytesPerCycle)

	search := func(l *workload.Layer) mapper.Candidate {
		return mapper.SearchCached(mapper.Request{
			Layer: l, PEsX: spec.PEsX, PEsY: spec.PEsY,
			GLBBits: spec.GlobalBufferBits(), RFBits: spec.RegFileBits(),
			EffectiveBytesPerCycle: eff, TopK: 1,
		})[0]
	}
	mp, mc := search(prod), search(cons)
	fmt.Printf("producer schedule: %s\n", mp.Mapping)
	fmt.Printf("consumer schedule: %s\n\n", mc.Mapping)

	ot := mp.Mapping.OfmapDRAMTiling(prod)
	it := mc.Mapping.IfmapDRAMTiling(cons)
	p := authblock.ProducerGrid{
		C: ot.M, H: ot.P, W: ot.Q,
		TileC: ot.MTile, TileH: ot.PTile, TileW: ot.QTile,
		WritesPerTile: ot.WritesPerTile,
	}
	c := authblock.ConsumerGrid{
		TileC: it.ChTile, WinH: it.HWin, WinW: it.WWin,
		StepH: it.HStep, StepW: it.WStep, OffH: it.OffH, OffW: it.OffW,
		CountC: it.ChCount, CountH: it.HCount, CountW: it.WCount,
		FetchesPerTile: it.FetchesPerTile,
	}
	fmt.Printf("producer tiles: %dx%dx%d over %dx%dx%d (%d tiles)\n",
		p.TileC, p.TileH, p.TileW, p.C, p.H, p.W, p.NumTiles())
	fmt.Printf("consumer windows: ch=%d win=%dx%d step=%dx%d off=%d,%d (%d tiles, halo %d rows)\n\n",
		c.TileC, c.WinH, c.WinW, c.StepH, c.StepW, c.OffH, c.OffW, c.NumTiles(), c.WinH-c.StepH)

	par := authblock.Params{WordBits: prod.WordBits, HashBits: 64}

	// Sweep horizontal sizes up to 64 and plot total extra traffic.
	results := authblock.Sweep(p, c, authblock.AlongQ, 64, par)
	var maxTotal int64
	for _, r := range results {
		if t := r.Costs.Total(); t > maxTotal {
			maxTotal = t
		}
	}
	fmt.Println("horizontal sweep (extra traffic per block size; # = 2% of max):")
	for _, r := range results {
		if r.Assignment.U%2 == 1 && r.Assignment.U > 1 {
			continue // print every other size to keep the plot compact
		}
		t := r.Costs.Total()
		bar := strings.Repeat("#", int(50*t/maxTotal))
		fmt.Printf("u=%3d %12d |%s\n", r.Assignment.U, t, bar)
	}

	opt := authblock.Optimal(p, c, par)
	fmt.Printf("\noptimal: %s u=%d -> hash %d + redundant %d = %d extra bits\n",
		opt.Assignment.Orientation, opt.Assignment.U,
		opt.Costs.HashBitsTotal(), opt.Costs.RedundantBits, opt.Costs.Total())

	base, rehashed := authblock.TileAsAuthBlock(p, c, par)
	mode := "direct"
	if rehashed {
		mode = "rehash"
	}
	fmt.Printf("tile-as-an-AuthBlock (%s): %d extra bits\n", mode, base.Total())
	if base.Total() > 0 {
		fmt.Printf("reduction: %.1f%%\n", 100*(1-float64(opt.Costs.Total())/float64(base.Total())))
	}
	if opt.Costs.Total() > base.Total() {
		fmt.Fprintln(os.Stderr, "unexpected: optimal worse than baseline")
		os.Exit(1)
	}
}
