// Quickstart: schedule AlexNet's convolutional layers on the paper's base
// secure accelerator (Eyeriss-class 14x12 PE array, 131 kB buffer, one
// parallel AES-GCM engine per datatype) and compare the three SecureLoop
// scheduling algorithms against the unsecure baseline — the Figure 11
// experiment in miniature.
package main

import (
	"fmt"
	"os"

	"secureloop/internal/arch"
	"secureloop/internal/core"
	"secureloop/internal/cryptoengine"
	"secureloop/internal/report"
	"secureloop/internal/workload"
)

func main() {
	// The workload: AlexNet conv1-conv5 (the paper's AlexNet subset).
	net := workload.AlexNet()

	// The design: base architecture plus the area-efficient parallel
	// AES-GCM engine, one per datatype.
	spec := arch.Base()
	crypto := cryptoengine.Config{Engine: cryptoengine.Parallel(), CountPerDatatype: 1}

	// The scheduler: paper defaults (top-6 schedules per layer, 1000
	// annealing iterations).
	scheduler := core.New(spec, crypto)

	base, err := scheduler.ScheduleNetwork(net, core.Unsecure)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("unsecure baseline: %d cycles\n\n", base.Total.Cycles)

	for _, alg := range core.Algorithms() {
		res, err := scheduler.ScheduleNetwork(net, alg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", alg)
		report.Summary(os.Stdout, res, spec.ClockHz)
		fmt.Printf("normalized latency: %.3f\n\n",
			float64(res.Total.Cycles)/float64(base.Total.Cycles))
	}

	// Show the chosen per-layer schedules and AuthBlock assignments for the
	// best algorithm.
	res, err := scheduler.ScheduleNetwork(net, core.CryptOptCross)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("per-layer schedules (Crypt-Opt-Cross):")
	report.Layers(os.Stdout, res)
}
